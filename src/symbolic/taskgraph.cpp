#include "symbolic/taskgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace sympack::symbolic {

TaskGraph::TaskGraph(const Symbolic& sym, std::shared_ptr<const Mapping> map)
    : sym_(&sym), map_(std::move(map)) {
  const Mapping& m = *map_;
  const idx_t ns = sym.num_snodes();
  ucount_.resize(ns);
  for (idx_t k = 0; k < ns; ++k) {
    ucount_[k].assign(1 + sym.snode(k).blocks.size(), 0);
  }
  owned_f_.assign(m.nranks(), 0);
  owned_u_.assign(m.nranks(), 0);

  for (idx_t j = 0; j < ns; ++j) {
    const auto& sn = sym.snode(j);
    // Factor tasks of panel j.
    ++owned_f_[m(j, j)];
    for (const auto& blk : sn.blocks) ++owned_f_[m(blk.target, j)];
    total_f_ += 1 + static_cast<idx_t>(sn.blocks.size());

    // Update tasks: every ordered pair (ti <= si) of panel-j blocks.
    const idx_t nb = static_cast<idx_t>(sn.blocks.size());
    for (idx_t ti = 0; ti < nb; ++ti) {
      const idx_t t = sn.blocks[ti].target;
      for (idx_t si = ti; si < nb; ++si) {
        const idx_t s = sn.blocks[si].target;
        BlockSlot slot;
        if (s == t) {
          slot = 0;  // diagonal block of supernode t
        } else {
          const idx_t bi = sym.find_block(t, s);
          if (bi < 0) {
            throw std::runtime_error(
                "TaskGraph: containment violation (missing target block)");
          }
          slot = bi + 1;
        }
        ++ucount_[t][slot];
        ++owned_u_[m(s, t)];
        ++total_u_;
      }
    }
  }

  build_consumer_tables();
}

TaskGraph::TaskGraph(const Symbolic& sym, const Mapping& map)
    : TaskGraph(sym, std::make_shared<const Mapping>(map)) {}

int TaskGraph::owner(idx_t k, BlockSlot slot) const {
  const Mapping& m = *map_;
  if (slot == 0) return m(k, k);
  return m(sym_->snode(k).blocks[slot - 1].target, k);
}

void TaskGraph::build_consumer_tables() {
  const Mapping& m = *map_;
  const idx_t ns = sym_->num_snodes();
  consumers_.resize(ns);
  recipients_.resize(ns);
  for (idx_t k = 0; k < ns; ++k) {
    const auto& sn = sym_->snode(k);
    const idx_t nslots = 1 + static_cast<idx_t>(sn.blocks.size());
    consumers_[k].resize(nslots);
    recipients_[k].resize(nslots);
    for (BlockSlot slot = 0; slot < nslots; ++slot) {
      std::vector<int>& out = consumers_[k][slot];
      if (slot == 0) {
        // The diagonal factor L_{k,k} is consumed by every F task of
        // panel k.
        for (const auto& blk : sn.blocks) out.push_back(m(blk.target, k));
      } else {
        const idx_t bi = slot - 1;
        const idx_t s = sn.blocks[bi].target;
        // As the source operand of U_{s,k,t} for every t <= s in the
        // panel.
        for (idx_t ti = 0; ti <= bi; ++ti) {
          out.push_back(m(s, sn.blocks[ti].target));
        }
        // As the pivot operand of U_{s',k,s} for every s' >= s in the
        // panel.
        for (idx_t si = bi; si < static_cast<idx_t>(sn.blocks.size()); ++si) {
          out.push_back(m(sn.blocks[si].target, s));
        }
      }
      std::sort(out.begin(), out.end());
      out.erase(std::unique(out.begin(), out.end()), out.end());

      std::vector<int>& rec = recipients_[k][slot];
      rec = out;
      const int self = owner(k, slot);
      rec.erase(std::remove(rec.begin(), rec.end(), self), rec.end());
    }
  }
}

std::size_t TaskGraph::panel_table_bytes(idx_t k) const {
  std::size_t bytes = ucount_[k].size() * sizeof(idx_t);
  for (const auto& list : consumers_[k]) bytes += list.size() * sizeof(int);
  for (const auto& list : recipients_[k]) bytes += list.size() * sizeof(int);
  return bytes;
}

}  // namespace sympack::symbolic

#include "symbolic/taskgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace sympack::symbolic {

TaskGraph::TaskGraph(const Symbolic& sym, const Mapping& map)
    : sym_(&sym), map_(map) {
  const idx_t ns = sym.num_snodes();
  ucount_.resize(ns);
  for (idx_t k = 0; k < ns; ++k) {
    ucount_[k].assign(1 + sym.snode(k).blocks.size(), 0);
  }
  owned_f_.assign(map.nranks(), 0);
  owned_u_.assign(map.nranks(), 0);

  for (idx_t j = 0; j < ns; ++j) {
    const auto& sn = sym.snode(j);
    // Factor tasks of panel j.
    ++owned_f_[map(j, j)];
    for (const auto& blk : sn.blocks) ++owned_f_[map(blk.target, j)];
    total_f_ += 1 + static_cast<idx_t>(sn.blocks.size());

    // Update tasks: every ordered pair (ti <= si) of panel-j blocks.
    const idx_t nb = static_cast<idx_t>(sn.blocks.size());
    for (idx_t ti = 0; ti < nb; ++ti) {
      const idx_t t = sn.blocks[ti].target;
      for (idx_t si = ti; si < nb; ++si) {
        const idx_t s = sn.blocks[si].target;
        BlockSlot slot;
        if (s == t) {
          slot = 0;  // diagonal block of supernode t
        } else {
          const idx_t bi = sym.find_block(t, s);
          if (bi < 0) {
            throw std::runtime_error(
                "TaskGraph: containment violation (missing target block)");
          }
          slot = bi + 1;
        }
        ++ucount_[t][slot];
        ++owned_u_[map(s, t)];
        ++total_u_;
      }
    }
  }
}

int TaskGraph::owner(idx_t k, BlockSlot slot) const {
  if (slot == 0) return map_(k, k);
  return map_(sym_->snode(k).blocks[slot - 1].target, k);
}

std::vector<int> TaskGraph::consumers(idx_t k, BlockSlot slot) const {
  const auto& sn = sym_->snode(k);
  std::vector<int> out;
  if (slot == 0) {
    // The diagonal factor L_{k,k} is consumed by every F task of panel k.
    for (const auto& blk : sn.blocks) out.push_back(map_(blk.target, k));
  } else {
    const idx_t bi = slot - 1;
    const idx_t s = sn.blocks[bi].target;
    // As the source operand of U_{s,k,t} for every t <= s in the panel.
    for (idx_t ti = 0; ti <= bi; ++ti) {
      out.push_back(map_(s, sn.blocks[ti].target));
    }
    // As the pivot operand of U_{s',k,s} for every s' >= s in the panel.
    for (idx_t si = bi; si < static_cast<idx_t>(sn.blocks.size()); ++si) {
      out.push_back(map_(sn.blocks[si].target, s));
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<int> TaskGraph::recipients(idx_t k, BlockSlot slot) const {
  auto out = consumers(k, slot);
  const int self = owner(k, slot);
  out.erase(std::remove(out.begin(), out.end(), self), out.end());
  return out;
}

}  // namespace sympack::symbolic

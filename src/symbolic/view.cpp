#include "symbolic/view.hpp"

#include <cstddef>

#include "pgas/machine_model.hpp"
#include "pgas/runtime.hpp"

namespace sympack::symbolic {

namespace {

/// Metadata bytes a rank retains for one resident panel: the supernode
/// record, its below-row and block arrays, and the per-panel task-graph
/// tables (update counts + recipient/consumer lists).
std::uint64_t panel_meta_bytes(const Symbolic& sym, const TaskGraph& tg,
                               idx_t k) {
  const Supernode& sn = sym.snode(k);
  std::uint64_t bytes = sizeof(Supernode);
  bytes += sn.below.size() * sizeof(idx_t);
  bytes += sn.blocks.size() * sizeof(Block);
  bytes += tg.panel_table_bytes(k);
  return bytes;
}

/// Assembly-tree parent of supernode k (-1 at a root): the supernode
/// holding the first row below the panel.
idx_t parent_snode(const Symbolic& sym, idx_t k) {
  const Supernode& sn = sym.snode(k);
  if (sn.below.empty()) return -1;
  return sym.snode_of(sn.below.front());
}

}  // namespace

SymbolicView::~SymbolicView() = default;
TaskGraphView::~TaskGraphView() = default;

ReplicatedSymbolicView::ReplicatedSymbolicView(const Symbolic& sym,
                                               const TaskGraph& tg,
                                               double build_wall_s)
    : SymbolicView(sym), build_wall_s_(build_wall_s) {
  // Full global footprint, present on every rank: all panel metadata
  // plus the O(n) column->supernode directory.
  for (idx_t k = 0; k < sym.num_snodes(); ++k) {
    replicated_bytes_ += panel_meta_bytes(sym, tg, k);
  }
  replicated_bytes_ += static_cast<std::uint64_t>(sym.n()) * sizeof(idx_t);
}

struct ShardedSymbolicView::State {
  const TaskGraph* tg = nullptr;
  const pgas::MachineModel* model = nullptr;
  int nranks = 0;
  /// Residency bitmap, [rank][snode]. Grows at runtime as pulls cache
  /// panels; each rank's row is only written by that rank's driving
  /// thread (same single-writer discipline as the rank clocks).
  std::vector<std::vector<std::uint8_t>> member;
  std::vector<std::uint64_t> resident_bytes;
  std::vector<std::uint64_t> pulls;
  std::vector<double> build_s;
  std::vector<std::uint64_t> panel_bytes;
  /// Fixed per-rank directory: first/last column of every supernode, so
  /// snode_of resolves by binary search without the O(n) map.
  std::uint64_t directory_bytes = 0;
};

ShardedSymbolicView::ShardedSymbolicView(const Symbolic& sym,
                                         const TaskGraph& tg,
                                         const pgas::MachineModel& model,
                                         int nranks, const AnalyzeStats& stats)
    : SymbolicView(sym), st_(std::make_unique<State>()) {
  State& st = *st_;
  st.tg = &tg;
  st.model = &model;
  st.nranks = nranks;
  const idx_t ns = sym.num_snodes();
  st.member.assign(static_cast<std::size_t>(nranks),
                   std::vector<std::uint8_t>(static_cast<std::size_t>(ns), 0));
  st.directory_bytes = static_cast<std::uint64_t>(ns) * 2 * sizeof(idx_t);
  st.resident_bytes.assign(static_cast<std::size_t>(nranks),
                           st.directory_bytes);
  st.pulls.assign(static_cast<std::size_t>(nranks), 0);
  st.panel_bytes.resize(static_cast<std::size_t>(ns));
  for (idx_t k = 0; k < ns; ++k) {
    st.panel_bytes[k] = panel_meta_bytes(sym, tg, k);
  }

  auto mark = [&st](int r, idx_t k) {
    auto& row = st.member[static_cast<std::size_t>(r)];
    if (row[static_cast<std::size_t>(k)] == 0) {
      row[static_cast<std::size_t>(k)] = 1;
      st.resident_bytes[static_cast<std::size_t>(r)] += st.panel_bytes[k];
    }
  };

  // Local relevance: a rank retains panel k when it owns one of k's
  // blocks, when it executes an update task consuming one of k's factor
  // blocks (= it is in a consumer set), or when it owns a block
  // *targeting* k (it scatters updates into k's panel and receives k's
  // solution segment in the backward solve sweep).
  for (idx_t k = 0; k < ns; ++k) {
    const Supernode& sn = sym.snode(k);
    const idx_t nslots = 1 + static_cast<idx_t>(sn.blocks.size());
    for (BlockSlot slot = 0; slot < nslots; ++slot) {
      mark(tg.owner(k, slot), k);
      for (int c : tg.consumers(k, slot)) mark(c, k);
      if (slot > 0) mark(tg.owner(k, slot), sn.blocks[slot - 1].target);
    }
  }

  // Ancestor closure: every resident panel drags in its assembly-tree
  // ancestor chain. Ascending panel order makes the early-stop sound: a
  // chain walk that hits an already-resident panel either inherited a
  // fully closed chain or will close it when the loop reaches that
  // panel's (higher) id.
  for (int r = 0; r < nranks; ++r) {
    auto& row = st.member[static_cast<std::size_t>(r)];
    for (idx_t k = 0; k < ns; ++k) {
      if (row[static_cast<std::size_t>(k)] == 0) continue;
      for (idx_t p = parent_snode(sym, k);
           p >= 0 && row[static_cast<std::size_t>(p)] == 0;
           p = parent_snode(sym, p)) {
        mark(r, p);
      }
    }
  }

  // Per-rank symbolic-phase time: proportional share of the measured
  // row-structure wall time plus the RPC cost of the child below-list
  // exchanges this rank received (AnalyzeStats's slice attribution).
  st.build_s.assign(static_cast<std::size_t>(nranks), 0.0);
  const std::uint64_t total_work = stats.total_work();
  for (int r = 0; r < nranks; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    double t = 0.0;
    if (total_work > 0 && ri < stats.rank_work.size()) {
      t = stats.wall_s * static_cast<double>(stats.rank_work[ri]) /
          static_cast<double>(total_work);
    } else {
      t = stats.wall_s / static_cast<double>(nranks);
    }
    if (ri < stats.rank_exchange_msgs.size()) {
      t += static_cast<double>(stats.rank_exchange_msgs[ri]) *
           model.rpc_overhead_s;
      t += static_cast<double>(stats.rank_exchange_bytes[ri]) /
           model.rpc_byte_Bps;
    }
    st.build_s[ri] = t;
  }
}

ShardedSymbolicView::~ShardedSymbolicView() = default;

void ShardedSymbolicView::touch(pgas::Rank& rank, idx_t k) const {
  State& st = *st_;
  const auto r = static_cast<std::size_t>(rank.id());
  auto& row = st.member[r];
  if (row[static_cast<std::size_t>(k)] != 0) return;
  // Remote metadata pull: one RPC round trip to the panel's home rank,
  // then cache. Deliberately kept out of the wire-protocol counters
  // (rpcs_sent/gets/bytes_from_host) so sharding never perturbs the
  // golden CommStats block — the symbolic_* family owns this traffic.
  const std::uint64_t bytes = st.panel_bytes[static_cast<std::size_t>(k)];
  rank.advance(st.model->rpc_time(static_cast<std::size_t>(bytes)));
  ++rank.stats().symbolic_pull_rpcs;
  rank.stats().symbolic_bytes += bytes;
  row[static_cast<std::size_t>(k)] = 1;
  st.resident_bytes[r] += bytes;
  ++st.pulls[r];
}

bool ShardedSymbolicView::resident(int rank, idx_t k) const {
  return st_->member[static_cast<std::size_t>(rank)]
                    [static_cast<std::size_t>(k)] != 0;
}

std::uint64_t ShardedSymbolicView::resident_bytes(int rank) const {
  return st_->resident_bytes[static_cast<std::size_t>(rank)];
}

std::uint64_t ShardedSymbolicView::pull_rpcs(int rank) const {
  return st_->pulls[static_cast<std::size_t>(rank)];
}

double ShardedSymbolicView::build_seconds(int rank) const {
  return st_->build_s[static_cast<std::size_t>(rank)];
}

std::uint64_t ShardedSymbolicView::panel_bytes(idx_t k) const {
  return st_->panel_bytes[static_cast<std::size_t>(k)];
}

int ShardedSymbolicView::nranks() const { return st_->nranks; }

}  // namespace sympack::symbolic

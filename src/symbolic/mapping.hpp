// Block-to-process mapping (paper §3.3). Blocks are identified by the
// coordinate pair (i, j): i = supernode owning the block's rows, j =
// supernode owning the block's columns. The default is the paper's 2D
// block-cyclic map over a near-square process grid; 1D row- and
// column-cyclic maps are provided for the mapping ablation, which the
// paper calls out as introducing serial bottlenecks.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sparse/types.hpp"
#include "symbolic/symbolic.hpp"

namespace sympack::symbolic {

using sparse::idx_t;

class Mapping {
 public:
  enum class Kind {
    k2dBlockCyclic,
    kRowCyclic,
    kColCyclic,
    /// Subtree-to-subcube: each elimination-tree subtree is assigned a
    /// contiguous rank range proportional to its factorization cost
    /// (the locality-aware mapping of PaStiX/MUMPS lineage); within a
    /// panel's range, block rows are dealt cyclically. Requires the
    /// proportional() factory.
    kProportional,
  };

  Mapping(int nranks, Kind kind = Kind::k2dBlockCyclic);

  /// Build a proportional mapping from the supernodal tree.
  static Mapping proportional(int nranks, const Symbolic& sym);

  /// Process owning block (i, j).
  [[nodiscard]] int operator()(idx_t i, idx_t j) const;

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] int grid_rows() const { return pr_; }
  [[nodiscard]] int grid_cols() const { return pc_; }
  [[nodiscard]] Kind kind() const { return kind_; }

  static Kind parse(const std::string& name);
  /// Canonical short name of a kind ("2d", "row", "col", "proportional");
  /// round-trips through parse().
  static const char* kind_name(Kind kind);

 private:
  int nranks_;
  Kind kind_;
  int pr_ = 1;
  int pc_ = 1;
  /// kProportional: per panel-supernode rank range [lo, hi).
  std::shared_ptr<const std::vector<std::pair<int, int>>> ranges_;
};

}  // namespace sympack::symbolic

#include "symbolic/symbolic.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "blas/blas.hpp"
#include "ordering/etree.hpp"

namespace sympack::symbolic {
namespace {

// Greedy relaxed amalgamation over detected supernode ranges
// [first, last]. A group is merged into the immediately following one
// when the following group is its elimination-tree parent and the
// padding (explicit zeros) this adds stays below the threshold.
std::vector<std::pair<idx_t, idx_t>> amalgamate(
    const std::vector<std::pair<idx_t, idx_t>>& ranges,
    const std::vector<idx_t>& parent, const std::vector<idx_t>& counts,
    const SymbolicOptions& opts) {
  std::vector<std::pair<idx_t, idx_t>> merged;
  std::vector<double> extra_zeros;  // padding accumulated per group
  for (const auto& range : ranges) {
    bool absorbed = false;
    if (!merged.empty()) {
      auto& prev = merged.back();
      const idx_t pf = prev.first, pl = prev.second;
      const idx_t sf = range.first;
      if (pl + 1 == sf && parent[pl] == sf) {
        // Padding estimate: every column j of the child is padded to the
        // structure of the parent's first column plus the columns in
        // between.
        double extra = 0.0;
        for (idx_t j = pf; j <= pl; ++j) {
          const double padded =
              static_cast<double>(counts[sf]) + static_cast<double>(sf - j);
          extra += std::max(0.0, padded - static_cast<double>(counts[j]));
        }
        double merged_entries = extra + extra_zeros.back();
        for (idx_t j = pf; j <= range.second; ++j) {
          merged_entries += static_cast<double>(counts[j]);
        }
        const bool small_child = (pl - pf + 1) <= opts.relax_small;
        const bool cheap =
            extra + extra_zeros.back() <= opts.relax_ratio * merged_entries;
        if (small_child || cheap) {
          prev.second = range.second;
          extra_zeros.back() += extra;
          absorbed = true;
        }
      }
    }
    if (!absorbed) {
      merged.push_back(range);
      extra_zeros.push_back(0.0);
    }
  }
  return merged;
}

std::vector<std::pair<idx_t, idx_t>> split_wide(
    const std::vector<std::pair<idx_t, idx_t>>& ranges, idx_t max_width) {
  if (max_width <= 0) return ranges;
  std::vector<std::pair<idx_t, idx_t>> out;
  for (const auto& [f, l] : ranges) {
    idx_t start = f;
    while (l - start + 1 > max_width) {
      out.emplace_back(start, start + max_width - 1);
      start += max_width;
    }
    out.emplace_back(start, l);
  }
  return out;
}

}  // namespace

idx_t Symbolic::find_block(idx_t k, idx_t t) const {
  const auto& blocks = snodes_[k].blocks;
  auto it = std::lower_bound(
      blocks.begin(), blocks.end(), t,
      [](const Block& b, idx_t target) { return b.target < target; });
  if (it == blocks.end() || it->target != t) return -1;
  return static_cast<idx_t>(it - blocks.begin());
}

Symbolic analyze(const sparse::CscMatrix& a, const std::vector<idx_t>& parent,
                 const SymbolicOptions& opts, int nranks,
                 AnalyzeStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const int slices = nranks > 1 ? nranks : 1;
  const bool attribute = stats != nullptr && slices > 1;
  if (attribute) {
    stats->rank_work.assign(static_cast<std::size_t>(slices), 0);
    stats->rank_exchange_bytes.assign(static_cast<std::size_t>(slices), 0);
    stats->rank_exchange_msgs.assign(static_cast<std::size_t>(slices), 0);
  }
  auto stamp_wall = [&] {
    if (stats != nullptr) {
      stats->wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    }
  };

  const idx_t n = a.n();
  Symbolic sym;
  sym.n_ = n;
  if (n == 0) {
    stamp_wall();
    return sym;
  }

  const auto counts = ordering::column_counts(a, parent);

  // ---- 1. Maximal supernodes: j-1 joins j iff parent(j-1) == j and
  // count(j-1) == count(j) + 1.
  std::vector<std::pair<idx_t, idx_t>> ranges;
  idx_t first = 0;
  for (idx_t j = 1; j < n; ++j) {
    const bool contiguous = parent[j - 1] == j && counts[j - 1] == counts[j] + 1;
    if (!contiguous) {
      ranges.emplace_back(first, j - 1);
      first = j;
    }
  }
  ranges.emplace_back(first, n - 1);

  // ---- 2. Relaxed amalgamation + width capping.
  if (opts.amalgamate) ranges = amalgamate(ranges, parent, counts, opts);
  ranges = split_wide(ranges, opts.max_width);

  const idx_t ns = static_cast<idx_t>(ranges.size());
  sym.snodes_.resize(ns);
  sym.snode_of_.resize(n);
  for (idx_t s = 0; s < ns; ++s) {
    auto& sn = sym.snodes_[s];
    sn.id = s;
    sn.first = ranges[s].first;
    sn.last = ranges[s].second;
    for (idx_t j = sn.first; j <= sn.last; ++j) sym.snode_of_[j] = s;
  }

  // ---- 3. Panel row structures: union of the panel's A-rows and the
  // below-rows contributed by child panels, truncated to rows beyond the
  // panel's own columns.
  //
  // Organized as the SPMD slice computation of the parallel symbolic
  // phase (DESIGN.md §4i): panels are dealt cyclically over `slices`
  // ranks, each rank merges the structures of its own panels in
  // ascending panel order (a topological order of the assembly tree —
  // every child has a lower id than its parent), and a child's
  // below-list crosses the wire exactly once whenever its parent panel
  // lives on a different rank. The merge sweep itself is order-identical
  // to the historical serial loop, so the resulting structure is
  // bit-for-bit the same regardless of the slice count.
  std::vector<std::vector<idx_t>> children(ns);
  for (idx_t s = 0; s < ns; ++s) {
    auto& sn = sym.snodes_[s];
    const int slice_owner = static_cast<int>(s % slices);
    std::uint64_t ops = 0;
    std::vector<idx_t> rows;
    for (idx_t j = sn.first; j <= sn.last; ++j) {
      ops += static_cast<std::uint64_t>(a.colptr()[j + 1] - a.colptr()[j]);
      for (idx_t p = a.colptr()[j]; p < a.colptr()[j + 1]; ++p) {
        const idx_t i = a.rowind()[p];
        if (i > sn.last) rows.push_back(i);
      }
    }
    for (idx_t c : children[s]) {
      const auto& child_below = sym.snodes_[c].below;
      ops += static_cast<std::uint64_t>(child_below.size());
      if (attribute && static_cast<int>(c % slices) != slice_owner) {
        // Child lives on another rank: its below-list is exchanged to
        // the parent's owner before the merge (one message per
        // cross-slice assembly-tree edge).
        stats->rank_exchange_bytes[slice_owner] +=
            child_below.size() * sizeof(idx_t);
        ++stats->rank_exchange_msgs[slice_owner];
      }
      for (idx_t r : child_below) {
        if (r > sn.last) rows.push_back(r);
      }
    }
    ops += static_cast<std::uint64_t>(rows.size());  // sort+unique share
    if (attribute) stats->rank_work[slice_owner] += ops;
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    sn.below = std::move(rows);
    if (!sn.below.empty()) {
      children[sym.snode_of_[sn.below.front()]].push_back(s);
    }
  }

  // ---- 4. Block partition (paper Alg. 2): group the sorted below-rows
  // by the supernode owning each row's column range; runs are contiguous
  // because supernode column ranges are contiguous and rows are sorted.
  for (auto& sn : sym.snodes_) {
    idx_t off = 0;
    const idx_t nb = sn.nrows_below();
    while (off < nb) {
      const idx_t target = sym.snode_of_[sn.below[off]];
      idx_t end = off + 1;
      while (end < nb && sym.snode_of_[sn.below[end]] == target) ++end;
      sn.blocks.push_back(Block{target, off, end - off});
      off = end;
    }
  }

  // ---- 5. Size and flop statistics.
  for (const auto& sn : sym.snodes_) {
    const idx_t w = sn.width();
    const idx_t b = sn.nrows_below();
    sym.factor_nnz_ += w * (w + 1) / 2 + w * b;
    sym.flops_ += static_cast<double>(blas::potrf_flops(static_cast<int>(w)));
    sym.flops_ += static_cast<double>(w) * w * b;          // panel TRSM
    sym.flops_ += static_cast<double>(w) * b * (b + 1.0);  // trailing update
  }
  stamp_wall();
  return sym;
}

void Symbolic::validate(const sparse::CscMatrix& a) const {
  auto fail = [](const std::string& msg) {
    throw std::runtime_error("Symbolic::validate: " + msg);
  };
  // Column partition.
  idx_t expect = 0;
  for (const auto& sn : snodes_) {
    if (sn.first != expect || sn.last < sn.first || sn.last >= n_) {
      fail("supernode ranges do not partition the columns");
    }
    expect = sn.last + 1;
    for (idx_t j = sn.first; j <= sn.last; ++j) {
      if (snode_of_[j] != sn.id) fail("snode_of inconsistent");
    }
  }
  if (expect != n_) fail("columns not fully covered");

  for (const auto& sn : snodes_) {
    // Below rows sorted, strictly beyond the diagonal block.
    for (std::size_t k = 0; k < sn.below.size(); ++k) {
      if (sn.below[k] <= sn.last) fail("below row inside diagonal block");
      if (k > 0 && sn.below[k] <= sn.below[k - 1]) fail("below not sorted");
    }
    // Blocks exactly tile `below`, targets strictly ascending, rows in
    // the target's column range.
    idx_t off = 0;
    idx_t prev_target = -1;
    for (const auto& blk : sn.blocks) {
      if (blk.row_off != off || blk.nrows <= 0) fail("blocks do not tile");
      if (blk.target <= prev_target) fail("block targets not ascending");
      prev_target = blk.target;
      const auto& target = snodes_[blk.target];
      for (idx_t r = blk.row_off; r < blk.row_off + blk.nrows; ++r) {
        if (sn.below[r] < target.first || sn.below[r] > target.last) {
          fail("block row outside target column range");
        }
      }
      off += blk.nrows;
    }
    if (off != sn.nrows_below()) fail("blocks do not cover below rows");

    // A's entries are covered by the panel structure.
    for (idx_t j = sn.first; j <= sn.last; ++j) {
      for (idx_t p = a.colptr()[j]; p < a.colptr()[j + 1]; ++p) {
        const idx_t i = a.rowind()[p];
        if (i <= sn.last) continue;
        if (!std::binary_search(sn.below.begin(), sn.below.end(), i)) {
          fail("matrix entry missing from panel structure");
        }
      }
    }

    // Update containment: an update U_{s,j,t} scatters rows of block s
    // of panel j into block B_{s,t} of panel t — those rows must exist
    // there (paper §3.2 dependency structure relies on this).
    for (std::size_t ti = 0; ti < sn.blocks.size(); ++ti) {
      const idx_t t = sn.blocks[ti].target;
      const auto& tgt = snodes_[t];
      for (std::size_t si = ti; si < sn.blocks.size(); ++si) {
        const auto& sblk = sn.blocks[si];
        const idx_t s = sblk.target;
        for (idx_t r = sblk.row_off; r < sblk.row_off + sblk.nrows; ++r) {
          const idx_t row = sn.below[r];
          if (s == t) {
            if (row < tgt.first || row > tgt.last) fail("containment (diag)");
          } else {
            const idx_t bi = find_block(t, s);
            if (bi < 0) fail("containment: target block missing");
            const auto& tb = tgt.blocks[bi];
            const auto begin = tgt.below.begin() + tb.row_off;
            const auto end = begin + tb.nrows;
            if (!std::binary_search(begin, end, row)) {
              fail("containment: row missing in target block");
            }
          }
        }
      }
    }
  }
}

}  // namespace sympack::symbolic

// Per-rank views over the symbolic layer (DESIGN.md §4i).
//
// Historically every rank materialized the entire Symbolic structure,
// Mapping, and TaskGraph — O(global) metadata replicated P times, and a
// serial symbolic prologue in front of every factorization. The view
// layer puts a per-rank lens between the engines and that global state:
//
//   SymbolicView / TaskGraphView    abstract per-rank interfaces that
//                                   mirror the Symbolic/TaskGraph method
//                                   surface (engines are written against
//                                   the views and never against the
//                                   concrete classes),
//   Replicated*View                 the historical behavior: every rank
//                                   sees everything at zero access cost.
//                                   Default; schedules and golden hashes
//                                   are bit-identical,
//   Sharded*View                    each rank retains only its locally
//                                   relevant supernodes (it owns a block
//                                   of the panel, executes updates
//                                   consuming it, or scatters into it)
//                                   plus their assembly-tree ancestor
//                                   closure; anything else is pulled on
//                                   demand through the pgas runtime —
//                                   one metadata RPC, charged to the
//                                   puller's simulated clock and counted
//                                   in the symbolic_* CommStats family.
//
// The physical Symbolic/TaskGraph objects stay shared (this is a
// single-process simulation of an SPMD cluster); the sharded view adds
// the per-rank residency sets, the byte accounting that the strong-
// scaling bench and the CI scale gate read, and the pull protocol. The
// numbers it reports are exactly what a distributed implementation would
// retain per rank under the 2D-cyclic slicing discipline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "symbolic/symbolic.hpp"
#include "symbolic/taskgraph.hpp"

namespace sympack::pgas {
class Rank;
struct MachineModel;
}  // namespace sympack::pgas

namespace sympack::symbolic {

/// Per-rank lens over the symbolic structure. The structure surface
/// (n/snode/snode_of/find_block/...) mirrors Symbolic exactly so engine
/// code reads identically against either; the virtual surface is the
/// sharding contract.
class SymbolicView {
 public:
  explicit SymbolicView(const Symbolic& sym) : sym_(&sym) {}
  virtual ~SymbolicView();
  SymbolicView(const SymbolicView&) = delete;
  SymbolicView& operator=(const SymbolicView&) = delete;

  [[nodiscard]] idx_t n() const { return sym_->n(); }
  [[nodiscard]] idx_t num_snodes() const { return sym_->num_snodes(); }
  [[nodiscard]] const Supernode& snode(idx_t s) const { return sym_->snode(s); }
  [[nodiscard]] const std::vector<Supernode>& snodes() const {
    return sym_->snodes();
  }
  [[nodiscard]] idx_t snode_of(idx_t col) const { return sym_->snode_of(col); }
  [[nodiscard]] idx_t find_block(idx_t k, idx_t t) const {
    return sym_->find_block(k, t);
  }
  [[nodiscard]] idx_t factor_nnz() const { return sym_->factor_nnz(); }
  [[nodiscard]] double flops() const { return sym_->flops(); }
  /// The underlying global structure (selected inversion and the tests
  /// deep-copy it; the engines never need it).
  [[nodiscard]] const Symbolic& symbolic() const { return *sym_; }

  [[nodiscard]] virtual bool sharded() const = 0;
  /// Record that `rank` dereferences panel k's metadata. On a sharded
  /// view, a first touch outside the rank's resident set is a remote
  /// metadata pull: the rank's clock advances by the RPC round trip and
  /// the symbolic_pull_rpcs / symbolic_bytes counters grow; the panel is
  /// then cached (resident) for the rest of the run. On the replicated
  /// view this is a no-op.
  virtual void touch(pgas::Rank& rank, idx_t k) const = 0;
  /// Is panel k's metadata resident on `rank` (always true replicated)?
  [[nodiscard]] virtual bool resident(int rank, idx_t k) const = 0;
  /// Symbolic metadata bytes rank currently retains (structure + task
  /// tables + directory). The replicated view reports the full global
  /// footprint for every rank — this is the flat-O(global) curve the
  /// sharded view turns into falling-with-P.
  [[nodiscard]] virtual std::uint64_t resident_bytes(int rank) const = 0;
  /// On-demand metadata pulls charged to `rank` so far.
  [[nodiscard]] virtual std::uint64_t pull_rpcs(int rank) const = 0;
  /// Simulated symbolic-phase build time for `rank`: the replicated view
  /// charges every rank the full serial prologue; the sharded view
  /// charges each rank its slice of the row-structure merge work plus
  /// the child below-list exchanges it received.
  [[nodiscard]] virtual double build_seconds(int rank) const = 0;

 protected:
  const Symbolic* sym_;
};

/// Historical behavior: the full structure on every rank, zero access
/// cost, no pull protocol. Bit-identical schedules.
class ReplicatedSymbolicView final : public SymbolicView {
 public:
  ReplicatedSymbolicView(const Symbolic& sym, const TaskGraph& tg,
                         double build_wall_s);
  [[nodiscard]] bool sharded() const override { return false; }
  void touch(pgas::Rank&, idx_t) const override {}
  [[nodiscard]] bool resident(int, idx_t) const override { return true; }
  [[nodiscard]] std::uint64_t resident_bytes(int) const override {
    return replicated_bytes_;
  }
  [[nodiscard]] std::uint64_t pull_rpcs(int) const override { return 0; }
  [[nodiscard]] double build_seconds(int) const override {
    return build_wall_s_;
  }

 private:
  std::uint64_t replicated_bytes_ = 0;
  double build_wall_s_ = 0.0;
};

/// 2D-cyclic sharding: per-rank residency sets over the shared physical
/// structure, ancestor closure, on-demand pulls. See DESIGN.md §4i for
/// the relevance rule and the exchange protocol.
class ShardedSymbolicView final : public SymbolicView {
 public:
  ShardedSymbolicView(const Symbolic& sym, const TaskGraph& tg,
                      const pgas::MachineModel& model, int nranks,
                      const AnalyzeStats& stats);
  ~ShardedSymbolicView() override;
  [[nodiscard]] bool sharded() const override { return true; }
  void touch(pgas::Rank& rank, idx_t k) const override;
  [[nodiscard]] bool resident(int rank, idx_t k) const override;
  [[nodiscard]] std::uint64_t resident_bytes(int rank) const override;
  [[nodiscard]] std::uint64_t pull_rpcs(int rank) const override;
  [[nodiscard]] double build_seconds(int rank) const override;

  /// Metadata bytes of panel k (structure + task tables) — what one pull
  /// transfers and what residency retains.
  [[nodiscard]] std::uint64_t panel_bytes(idx_t k) const;
  [[nodiscard]] int nranks() const;

 private:
  struct State;
  std::unique_ptr<State> st_;
};

/// Per-rank lens over the task graph. Pass-through surface mirrors
/// TaskGraph; touch() is the sharding contract (delegated to the
/// SymbolicView's residency universe — panel structure and task tables
/// travel as one unit).
class TaskGraphView {
 public:
  TaskGraphView(const TaskGraph& tg, const SymbolicView& sview)
      : tg_(&tg), sview_(&sview) {}
  virtual ~TaskGraphView();
  TaskGraphView(const TaskGraphView&) = delete;
  TaskGraphView& operator=(const TaskGraphView&) = delete;

  [[nodiscard]] const TaskGraph& graph() const { return *tg_; }
  [[nodiscard]] const Symbolic& symbolic() const { return tg_->symbolic(); }
  [[nodiscard]] const Mapping& mapping() const { return tg_->mapping(); }
  [[nodiscard]] idx_t update_count(idx_t k, BlockSlot slot) const {
    return tg_->update_count(k, slot);
  }
  [[nodiscard]] int owner(idx_t k, BlockSlot slot) const {
    return tg_->owner(k, slot);
  }
  [[nodiscard]] idx_t owned_factor_tasks(int rank) const {
    return tg_->owned_factor_tasks(rank);
  }
  [[nodiscard]] idx_t owned_update_tasks(int rank) const {
    return tg_->owned_update_tasks(rank);
  }
  [[nodiscard]] idx_t total_updates() const { return tg_->total_updates(); }
  [[nodiscard]] idx_t total_factor_tasks() const {
    return tg_->total_factor_tasks();
  }
  [[nodiscard]] const std::vector<int>& recipients(idx_t k,
                                                   BlockSlot slot) const {
    return tg_->recipients(k, slot);
  }
  [[nodiscard]] const std::vector<int>& consumers(idx_t k,
                                                  BlockSlot slot) const {
    return tg_->consumers(k, slot);
  }
  [[nodiscard]] const SymbolicView& view() const { return *sview_; }

  [[nodiscard]] virtual bool sharded() const = 0;
  /// See SymbolicView::touch.
  virtual void touch(pgas::Rank& rank, idx_t k) const = 0;

 protected:
  const TaskGraph* tg_;
  const SymbolicView* sview_;
};

class ReplicatedTaskGraphView final : public TaskGraphView {
 public:
  ReplicatedTaskGraphView(const TaskGraph& tg,
                          const ReplicatedSymbolicView& sview)
      : TaskGraphView(tg, sview) {}
  [[nodiscard]] bool sharded() const override { return false; }
  void touch(pgas::Rank&, idx_t) const override {}
};

class ShardedTaskGraphView final : public TaskGraphView {
 public:
  ShardedTaskGraphView(const TaskGraph& tg, const ShardedSymbolicView& sview)
      : TaskGraphView(tg, sview) {}
  [[nodiscard]] bool sharded() const override { return true; }
  void touch(pgas::Rank& rank, idx_t k) const override {
    sview_->touch(rank, k);
  }
};

}  // namespace sympack::symbolic

// Static task-graph analysis (paper §3.2/§3.3).
//
// The numeric factorization runs three task types:
//   D_k       factor the diagonal block of supernode k            (POTRF)
//   F_{s,k}   factor off-diagonal block B_{s,k}                   (TRSM)
//   U_{s,j,t} update B_{s,t} with L_{s,j} * L_{t,j}^T         (SYRK/GEMM)
// U_{s,j,t} exists for every panel j and every ordered pair of its blocks
// (t <= s); it executes on the owner of the *target* block B_{s,t} — the
// defining property of the fan-out family.
//
// This class precomputes, for a given block->process mapping:
//   - the number of updates landing in every block (the initial
//     dependency counters of the D and F tasks),
//   - per-rank task totals (termination detection),
//   - the recipient sets P_F and P_D of every factor block (who must be
//     signalled when it completes). The sets are materialized once at
//     build and served as const references — recipients() sits on the
//     per-signal hot path of every engine.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "symbolic/mapping.hpp"
#include "symbolic/symbolic.hpp"

namespace sympack::symbolic {

/// Identifies a block within its panel: slot 0 is the diagonal block,
/// slot b+1 is Supernode::blocks[b].
using BlockSlot = idx_t;

class TaskGraph {
 public:
  /// The mapping is shared, not copied: every consumer of the graph
  /// (engines, recovery, autotune pilots) reads the same immutable
  /// Mapping instance through mapping()/mapping_ptr().
  TaskGraph(const Symbolic& sym, std::shared_ptr<const Mapping> map);
  TaskGraph(const Symbolic& sym, const Mapping& map);

  [[nodiscard]] const Symbolic& symbolic() const { return *sym_; }
  [[nodiscard]] const Mapping& mapping() const { return *map_; }
  [[nodiscard]] std::shared_ptr<const Mapping> mapping_ptr() const {
    return map_;
  }

  /// Number of update tasks whose target is block `slot` of supernode k.
  [[nodiscard]] idx_t update_count(idx_t k, BlockSlot slot) const {
    return ucount_[k][slot];
  }

  /// Owner rank of block slot of supernode k.
  [[nodiscard]] int owner(idx_t k, BlockSlot slot) const;

  /// Per-rank totals for termination detection.
  [[nodiscard]] idx_t owned_factor_tasks(int rank) const {
    return owned_f_[rank];
  }
  [[nodiscard]] idx_t owned_update_tasks(int rank) const {
    return owned_u_[rank];
  }

  [[nodiscard]] idx_t total_updates() const { return total_u_; }
  [[nodiscard]] idx_t total_factor_tasks() const { return total_f_; }

  /// Ranks that must be notified when factor block (k, slot) completes
  /// (paper's P_F for off-diagonal blocks, P_D for slot 0), excluding the
  /// owner itself. Sorted, deduplicated. Precomputed at build; the
  /// reference stays valid for the graph's lifetime.
  [[nodiscard]] const std::vector<int>& recipients(idx_t k,
                                                   BlockSlot slot) const {
    return recipients_[k][slot];
  }

  /// Ranks (including the owner if it has such tasks) that execute
  /// updates consuming factor block (k, slot); recipients() is this set
  /// minus the owner for off-diagonal blocks, plus F-task owners for the
  /// diagonal. Exposed for tests.
  [[nodiscard]] const std::vector<int>& consumers(idx_t k,
                                                  BlockSlot slot) const {
    return consumers_[k][slot];
  }

  /// Bytes of per-panel task-graph tables (update-count row plus the
  /// recipient/consumer lists of every slot) — the table share of what a
  /// sharded view retains for a resident panel.
  [[nodiscard]] std::size_t panel_table_bytes(idx_t k) const;

 private:
  void build_consumer_tables();

  const Symbolic* sym_;
  std::shared_ptr<const Mapping> map_;
  std::vector<std::vector<idx_t>> ucount_;  // [snode][slot]
  std::vector<std::vector<std::vector<int>>> consumers_;   // [snode][slot]
  std::vector<std::vector<std::vector<int>>> recipients_;  // [snode][slot]
  std::vector<idx_t> owned_f_;
  std::vector<idx_t> owned_u_;
  idx_t total_u_ = 0;
  idx_t total_f_ = 0;
};

}  // namespace sympack::symbolic

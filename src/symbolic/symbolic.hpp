// Symbolic factorization (paper §3.1): partition the columns of the
// permuted matrix into supernodes, compute each supernode's factor row
// structure, and split the rows of each supernodal panel into dense
// blocks aligned with supernode boundaries (Algorithm 2 of the paper).
//
// Supernodes are detected from the elimination tree and column counts
// (maximal supernodes: column j-1 joins j iff parent(j-1) = j and
// count(j-1) = count(j) + 1), optionally amalgamated (merging a child
// chain into its parent when the padding this introduces is small), and
// optionally split to a maximum width so the 2D distribution has enough
// blocks to balance.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/csc.hpp"
#include "sparse/types.hpp"

namespace sympack::symbolic {

using sparse::idx_t;

struct SymbolicOptions {
  bool amalgamate = true;
  /// Maximum fraction of explicit zeros a merge may add to the merged
  /// panel.
  double relax_ratio = 0.15;
  /// Supernodes at or below this width are merged into their parent
  /// regardless of relax_ratio (tiny panels cost more than padding).
  idx_t relax_small = 8;
  /// Split supernodes wider than this (0 = unlimited). Narrower panels
  /// mean more blocks and better 2D load balance.
  idx_t max_width = 128;
  /// Build per-rank sharded symbolic/task-graph views instead of
  /// replicating the full structure on every rank: each rank retains only
  /// its locally relevant supernodes plus ancestor closure and pulls
  /// anything else on demand through the pgas runtime
  /// (SYMPACK_SYMBOLIC_SHARD). Off by default — the replicated views are
  /// bit-identical to the historical solver.
  bool shard = false;
};

/// Cost accounting for the symbolic phase, filled by analyze(). The
/// row-structure phase is organized as an SPMD slice computation: panels
/// are dealt cyclically (k mod nranks), each rank merges the structures
/// of its own slice, and a child panel's below-list crosses the wire
/// once whenever its parent lives on a different rank. With nranks <= 1
/// (or sharding off) only `wall_s` is filled.
struct AnalyzeStats {
  /// Wall-clock seconds of the whole analyze() call.
  double wall_s = 0.0;
  /// Per-rank share of the row-structure merge work, in abstract merge
  /// operations (rows scanned + rows sorted); proportional attribution
  /// of wall_s gives the per-rank compute time.
  std::vector<std::uint64_t> rank_work;
  /// Bytes of child below-lists received from other ranks (the symbolic
  /// exchange protocol) and the number of such transfers.
  std::vector<std::uint64_t> rank_exchange_bytes;
  std::vector<std::uint64_t> rank_exchange_msgs;
  [[nodiscard]] std::uint64_t total_work() const {
    std::uint64_t t = 0;
    for (std::uint64_t w : rank_work) t += w;
    return t;
  }
};

/// A dense block of a supernodal panel (paper Alg. 2): the rows of
/// supernode `src` whose row indices fall inside the column range of
/// supernode `target`.
struct Block {
  idx_t target = -1;   // supernode owning the rows' column range
  idx_t row_off = 0;   // offset into the supernode's `below` array
  idx_t nrows = 0;
};

struct Supernode {
  idx_t id = -1;
  idx_t first = 0;  // first column (inclusive)
  idx_t last = 0;   // last column (inclusive)
  /// Row indices of the panel strictly below the diagonal block, sorted.
  std::vector<idx_t> below;
  /// Partition of `below` into blocks by target supernode, ascending.
  std::vector<Block> blocks;

  [[nodiscard]] idx_t width() const { return last - first + 1; }
  [[nodiscard]] idx_t nrows_below() const {
    return static_cast<idx_t>(below.size());
  }
  /// Total panel rows: diagonal block + below rows.
  [[nodiscard]] idx_t panel_rows() const { return width() + nrows_below(); }
};

class Symbolic {
 public:
  [[nodiscard]] idx_t n() const { return n_; }
  [[nodiscard]] idx_t num_snodes() const {
    return static_cast<idx_t>(snodes_.size());
  }
  [[nodiscard]] const Supernode& snode(idx_t s) const { return snodes_[s]; }
  [[nodiscard]] const std::vector<Supernode>& snodes() const { return snodes_; }
  [[nodiscard]] idx_t snode_of(idx_t col) const { return snode_of_[col]; }

  /// Index into snode(k).blocks of the block targeting supernode t, or -1.
  [[nodiscard]] idx_t find_block(idx_t k, idx_t t) const;

  /// Stored factor entries (diagonal panels count the full triangle the
  /// solver actually stores).
  [[nodiscard]] idx_t factor_nnz() const { return factor_nnz_; }
  /// Factorization flops implied by the panel shapes.
  [[nodiscard]] double flops() const { return flops_; }

  /// Consistency checks (partition validity, sorted structures, update
  /// containment: every source block's rows appear in the target panel).
  /// Throws std::runtime_error on violation. Used by tests.
  void validate(const sparse::CscMatrix& a) const;

 private:
  friend Symbolic analyze(const sparse::CscMatrix&, const std::vector<idx_t>&,
                          const SymbolicOptions&, int, AnalyzeStats*);
  idx_t n_ = 0;
  std::vector<idx_t> snode_of_;
  std::vector<Supernode> snodes_;
  idx_t factor_nnz_ = 0;
  double flops_ = 0.0;
};

/// Run the full symbolic phase on the *permuted* matrix. `parent` is its
/// elimination tree. With nranks > 1 the row-structure phase runs as a
/// per-rank slice computation (2D-cyclic panel ownership, explicit child
/// below-list exchange between slices) and `stats`, if given, receives
/// the per-rank work/exchange attribution; the resulting structure is
/// identical to the replicated (nranks <= 1) path in either case.
Symbolic analyze(const sparse::CscMatrix& a, const std::vector<idx_t>& parent,
                 const SymbolicOptions& opts = {}, int nranks = 0,
                 AnalyzeStats* stats = nullptr);

}  // namespace sympack::symbolic

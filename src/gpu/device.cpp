#include "gpu/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace sympack::gpu {

const char* op_name(Op op) {
  switch (op) {
    case Op::kGemm: return "GEMM";
    case Op::kSyrk: return "SYRK";
    case Op::kTrsm: return "TRSM";
    case Op::kPotrf: return "POTRF";
  }
  return "?";
}

double cpu_kernel_time(const pgas::MachineModel& model, Op op, double flops) {
  double rate = model.cpu_gemm_Gflops;
  switch (op) {
    case Op::kGemm: rate = model.cpu_gemm_Gflops; break;
    case Op::kSyrk: rate = model.cpu_syrk_Gflops; break;
    case Op::kTrsm: rate = model.cpu_trsm_Gflops; break;
    case Op::kPotrf: rate = model.cpu_potrf_Gflops; break;
  }
  return flops / (rate * 1e9);
}

double gpu_kernel_time(const pgas::MachineModel& model, Op op, double flops) {
  double rate = model.gpu_gemm_Gflops;
  switch (op) {
    case Op::kGemm: rate = model.gpu_gemm_Gflops; break;
    case Op::kSyrk: rate = model.gpu_syrk_Gflops; break;
    case Op::kTrsm: rate = model.gpu_trsm_Gflops; break;
    case Op::kPotrf: rate = model.gpu_potrf_Gflops; break;
  }
  return flops / (rate * 1e9);
}

double Device::submit(Op op, double flops, double ready) {
  std::lock_guard<std::mutex> lock(mutex_);
  const double start = std::max(ready, busy_until_);
  const double finish =
      start + model_->gpu_launch_s + gpu_kernel_time(*model_, op, flops);
  busy_until_ = finish;
  ++kernels_;
  return finish;
}

double Device::busy_until() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return busy_until_;
}

std::uint64_t Device::kernels_launched() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return kernels_;
}

void Device::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  busy_until_ = 0.0;
  kernels_ = 0;
}

DeviceManager::DeviceManager(pgas::Runtime& runtime) {
  const int total = runtime.nodes() * runtime.config().gpus_per_node;
  devices_.reserve(total);
  for (int d = 0; d < total; ++d) {
    devices_.push_back(std::make_unique<Device>(d, runtime.model()));
  }
}

void DeviceManager::reset() {
  for (auto& d : devices_) d->reset();
}

}  // namespace sympack::gpu

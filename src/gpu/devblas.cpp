#include "gpu/devblas.hpp"

namespace sympack::gpu {
namespace {

// Block the calling rank until the submitted kernel finishes (symPACK
// synchronizes after each offloaded computation).
void charge(pgas::Rank& rank, Device& dev, Op op, double flops) {
  const double done = dev.submit(op, flops, rank.now());
  rank.merge_clock(done);
}

}  // namespace

void dev_gemm(pgas::Rank& rank, Device& dev, blas::Trans trans_a,
              blas::Trans trans_b, int m, int n, int k, double alpha,
              const double* a, int lda, const double* b, int ldb, double beta,
              double* c, int ldc) {
  blas::gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
  charge(rank, dev, Op::kGemm,
         static_cast<double>(blas::gemm_flops(m, n, k)));
}

void dev_syrk(pgas::Rank& rank, Device& dev, blas::UpLo uplo,
              blas::Trans trans, int n, int k, double alpha, const double* a,
              int lda, double beta, double* c, int ldc) {
  blas::syrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc);
  charge(rank, dev, Op::kSyrk, static_cast<double>(blas::syrk_flops(n, k)));
}

void dev_trsm(pgas::Rank& rank, Device& dev, blas::Side side, blas::UpLo uplo,
              blas::Trans trans_a, blas::Diag diag, int m, int n, double alpha,
              const double* a, int lda, double* b, int ldb) {
  blas::trsm(side, uplo, trans_a, diag, m, n, alpha, a, lda, b, ldb);
  charge(rank, dev, Op::kTrsm,
         static_cast<double>(blas::trsm_flops(side, m, n)));
}

int dev_potrf(pgas::Rank& rank, Device& dev, blas::UpLo uplo, int n, double* a,
              int lda) {
  const int info = blas::potrf(uplo, n, a, lda);
  charge(rank, dev, Op::kPotrf, static_cast<double>(blas::potrf_flops(n)));
  return info;
}

}  // namespace sympack::gpu

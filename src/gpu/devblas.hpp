// Device BLAS/LAPACK: the cuBLAS/cuSolver stand-in (paper §4.2).
//
// Each routine computes the exact same result as the host kernel (the
// math runs on the host against the device-resident buffers, which are
// host-addressable in this simulation) and charges simulated GPU time:
// the calling rank blocks until kernel completion, and the kernel
// serializes against other kernels on the same physical device.
#pragma once

#include "blas/blas.hpp"
#include "gpu/device.hpp"
#include "pgas/runtime.hpp"

namespace sympack::gpu {

void dev_gemm(pgas::Rank& rank, Device& dev, blas::Trans trans_a,
              blas::Trans trans_b, int m, int n, int k, double alpha,
              const double* a, int lda, const double* b, int ldb, double beta,
              double* c, int ldc);

void dev_syrk(pgas::Rank& rank, Device& dev, blas::UpLo uplo,
              blas::Trans trans, int n, int k, double alpha, const double* a,
              int lda, double beta, double* c, int ldc);

void dev_trsm(pgas::Rank& rank, Device& dev, blas::Side side, blas::UpLo uplo,
              blas::Trans trans_a, blas::Diag diag, int m, int n, double alpha,
              const double* a, int lda, double* b, int ldb);

/// Returns the POTRF info code (0 = success), as cuSolver does.
int dev_potrf(pgas::Rank& rank, Device& dev, blas::UpLo uplo, int n, double* a,
              int lda);

}  // namespace sympack::gpu

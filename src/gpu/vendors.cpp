#include "gpu/vendors.hpp"

#include <stdexcept>

namespace sympack::gpu {

void apply_device_vendor(pgas::MachineModel& model, DeviceVendor vendor) {
  switch (vendor) {
    case DeviceVendor::kNvidiaA100:
      model.gpu_gemm_Gflops = 17000.0;
      model.gpu_syrk_Gflops = 12000.0;
      model.gpu_trsm_Gflops = 6000.0;
      model.gpu_potrf_Gflops = 4000.0;
      model.gpu_launch_s = 12.0e-6;
      model.pcie_bandwidth_Bps = 18.6e9;
      break;
    case DeviceVendor::kAmdMi250x:
      // One GCD of an MI250X; HIP launch latency is somewhat higher.
      model.gpu_gemm_Gflops = 19000.0;
      model.gpu_syrk_Gflops = 12500.0;
      model.gpu_trsm_Gflops = 5000.0;
      model.gpu_potrf_Gflops = 3500.0;
      model.gpu_launch_s = 16.0e-6;
      model.pcie_bandwidth_Bps = 27.0e9;  // Infinity Fabric host link
      break;
    case DeviceVendor::kIntelPvc:
      model.gpu_gemm_Gflops = 12000.0;
      model.gpu_syrk_Gflops = 9000.0;
      model.gpu_trsm_Gflops = 4500.0;
      model.gpu_potrf_Gflops = 3000.0;
      model.gpu_launch_s = 14.0e-6;
      model.pcie_bandwidth_Bps = 22.0e9;
      break;
  }
}

const char* vendor_name(DeviceVendor vendor) {
  switch (vendor) {
    case DeviceVendor::kNvidiaA100: return "nvidia-a100";
    case DeviceVendor::kAmdMi250x: return "amd-mi250x";
    case DeviceVendor::kIntelPvc: return "intel-pvc";
  }
  return "?";
}

DeviceVendor parse_vendor(const std::string& name) {
  if (name == "nvidia" || name == "nvidia-a100" || name == "cuda") {
    return DeviceVendor::kNvidiaA100;
  }
  if (name == "amd" || name == "amd-mi250x" || name == "hip") {
    return DeviceVendor::kAmdMi250x;
  }
  if (name == "intel" || name == "intel-pvc" || name == "oneapi") {
    return DeviceVendor::kIntelPvc;
  }
  throw std::invalid_argument("unknown device vendor: " + name);
}

}  // namespace sympack::gpu

// Simulated GPU devices.
//
// Each physical device is a contended resource shared by the ranks bound
// to it (paper §4.2 recommends binding process p to device p mod d).
// Kernels execute their numerics on the host (bit-identical results) and
// charge simulated time from the A100 performance model; the device's own
// clock serializes kernels from co-located ranks, so oversubscribing a
// GPU shows up as queueing delay exactly like on real hardware.
#pragma once

#include <mutex>
#include <vector>

#include "pgas/machine_model.hpp"
#include "pgas/runtime.hpp"

namespace sympack::gpu {

enum class Op { kGemm, kSyrk, kTrsm, kPotrf };

const char* op_name(Op op);

/// Time to run `flops` of `op` on the CPU (one core, flat-MPI process).
double cpu_kernel_time(const pgas::MachineModel& model, Op op, double flops);

/// Pure execution time of `flops` of `op` on the device (excl. launch).
double gpu_kernel_time(const pgas::MachineModel& model, Op op, double flops);

class Device {
 public:
  Device(int id, const pgas::MachineModel& model)
      : id_(id), model_(&model) {}

  [[nodiscard]] int id() const { return id_; }

  /// Submit a kernel: the caller becomes ready at `ready`; the kernel
  /// starts when both the caller and the device are free, runs for
  /// launch-overhead + flops/rate, and the completion time is returned.
  /// Thread-safe (device clock is shared between ranks).
  double submit(Op op, double flops, double ready);

  [[nodiscard]] double busy_until() const;
  [[nodiscard]] std::uint64_t kernels_launched() const;
  void reset();

 private:
  int id_;
  const pgas::MachineModel* model_;
  mutable std::mutex mutex_;
  double busy_until_ = 0.0;
  std::uint64_t kernels_ = 0;
};

/// One Device per physical GPU of the runtime's cluster, plus the
/// rank -> device binding.
class DeviceManager {
 public:
  explicit DeviceManager(pgas::Runtime& runtime);

  [[nodiscard]] Device& device_for(const pgas::Rank& rank) {
    return *devices_.at(rank.device());
  }
  [[nodiscard]] Device& device(int id) { return *devices_.at(id); }
  [[nodiscard]] int count() const { return static_cast<int>(devices_.size()); }
  void reset();

 private:
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace sympack::gpu

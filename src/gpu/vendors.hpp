// Multi-vendor device presets (paper §4.1/§6).
//
// The paper argues that UPC++ memory kinds make the solver portable
// across GPU vendors by "simply changing a template parameter" — the
// communication layer is device-agnostic and only the BLAS backend and
// device constants change. This module is that knob for the simulated
// machine: selecting a vendor swaps the device performance constants
// (the devblas call sites and the memory-kinds transfer paths are
// untouched, exactly as the paper predicts).
//
// Rates are modeled approximations of public FP64 figures for each part;
// they parameterize the simulation only.
#pragma once

#include <string>

#include "pgas/machine_model.hpp"

namespace sympack::gpu {

enum class DeviceVendor {
  kNvidiaA100,  // the paper's Perlmutter configuration (cuBLAS/cuSolver)
  kAmdMi250x,   // rocBLAS/rocSOLVER-class device
  kIntelPvc,    // oneMKL-class device
};

/// Overwrite the GPU-side constants of `model` with the vendor preset.
void apply_device_vendor(pgas::MachineModel& model, DeviceVendor vendor);

const char* vendor_name(DeviceVendor vendor);
DeviceVendor parse_vendor(const std::string& name);

}  // namespace sympack::gpu

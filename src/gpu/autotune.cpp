#include "gpu/autotune.hpp"

#include "blas/blas.hpp"
#include "gpu/device.hpp"

namespace sympack::gpu {
namespace {

// Device-vs-CPU time for one op on a w-by-w-shaped call.
// `staged_buffers` counts the w^2 operand/result transfers over PCIe.
double device_time(const pgas::MachineModel& model, Op op, double flops,
                   int staged_buffers, double bytes) {
  return model.gpu_launch_s + gpu_kernel_time(model, op, flops) +
         staged_buffers * model.hd_copy_time(static_cast<std::size_t>(bytes));
}

std::int64_t crossover(const pgas::MachineModel& model, Op op,
                       double (*flops_of)(double), int staged_buffers) {
  // Find the smallest w where the device path wins; threshold = w^2.
  for (std::int64_t w = 4; w <= 4096; w += 4) {
    const double flops = flops_of(static_cast<double>(w));
    const double bytes = 8.0 * static_cast<double>(w) * static_cast<double>(w);
    const double cpu = cpu_kernel_time(model, op, flops);
    if (device_time(model, op, flops, staged_buffers, bytes) < cpu) {
      return w * w;
    }
  }
  // Device never wins (e.g. a pathological model): disable offload of
  // this op with an unreachable threshold.
  return static_cast<std::int64_t>(1) << 62;
}

}  // namespace

Thresholds analytic_thresholds(const pgas::MachineModel& model) {
  Thresholds t;
  // POTRF: w^3/3 flops; the diagonal block is staged in and out.
  t.potrf = crossover(
      model, Op::kPotrf, +[](double w) { return w * w * w / 3.0; }, 2);
  // TRSM (panel factorization, m ~= w): w^3 flops; panel in+out, diagonal
  // factor in (often device-resident already — we charge it, erring on
  // the conservative side).
  t.trsm = crossover(
      model, Op::kTrsm, +[](double w) { return w * w * w; }, 3);
  // SYRK: n^2 k with n ~= k ~= w; source in, target scratch out.
  t.syrk = crossover(
      model, Op::kSyrk, +[](double w) { return w * w * w; }, 2);
  // GEMM: 2 w^3; two operands in, result out.
  t.gemm = crossover(
      model, Op::kGemm, +[](double w) { return 2.0 * w * w * w; }, 3);
  return t;
}

}  // namespace sympack::gpu

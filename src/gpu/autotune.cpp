#include "gpu/autotune.hpp"

#include <algorithm>
#include <vector>

#include "blas/blas.hpp"
#include "gpu/device.hpp"
#include "support/timer.hpp"

namespace sympack::gpu {
namespace {

// Device-vs-CPU time for one op on a w-by-w-shaped call.
// `staged_buffers` counts the w^2 operand/result transfers over PCIe.
double device_time(const pgas::MachineModel& model, Op op, double flops,
                   int staged_buffers, double bytes) {
  return model.gpu_launch_s + gpu_kernel_time(model, op, flops) +
         staged_buffers * model.hd_copy_time(static_cast<std::size_t>(bytes));
}

std::int64_t crossover(const pgas::MachineModel& model, Op op,
                       double (*flops_of)(double), int staged_buffers) {
  // Find the smallest w where the device path wins; threshold = w^2.
  for (std::int64_t w = 4; w <= 4096; w += 4) {
    const double flops = flops_of(static_cast<double>(w));
    const double bytes = 8.0 * static_cast<double>(w) * static_cast<double>(w);
    const double cpu = cpu_kernel_time(model, op, flops);
    if (device_time(model, op, flops, staged_buffers, bytes) < cpu) {
      return w * w;
    }
  }
  // Device never wins (e.g. a pathological model): disable offload of
  // this op with an unreachable threshold.
  return static_cast<std::int64_t>(1) << 62;
}

}  // namespace

Thresholds analytic_thresholds(const pgas::MachineModel& model) {
  Thresholds t;
  // POTRF: w^3/3 flops; the diagonal block is staged in and out.
  t.potrf = crossover(
      model, Op::kPotrf, +[](double w) { return w * w * w / 3.0; }, 2);
  // TRSM (panel factorization, m ~= w): w^3 flops; panel in+out, diagonal
  // factor in (often device-resident already — we charge it, erring on
  // the conservative side).
  t.trsm = crossover(
      model, Op::kTrsm, +[](double w) { return w * w * w; }, 3);
  // SYRK: n^2 k with n ~= k ~= w; source in, target scratch out.
  t.syrk = crossover(
      model, Op::kSyrk, +[](double w) { return w * w * w; }, 2);
  // GEMM: 2 w^3; two operands in, result out.
  t.gemm = crossover(
      model, Op::kGemm, +[](double w) { return 2.0 * w * w * w; }, 3);
  return t;
}

std::vector<TileTiming> sweep_tile_configs(int problem, int reps) {
  const int n = std::max(problem, 64);
  const std::size_t nn = static_cast<std::size_t>(n) * n;
  // Deterministic, well-scaled operands (no RNG needed for timing).
  std::vector<double> a(nn), b(nn), c(nn, 0.0);
  for (std::size_t i = 0; i < nn; ++i) {
    a[i] = 1.0 + static_cast<double>(i % 13) / 16.0;
    b[i] = 1.0 - static_cast<double>(i % 7) / 16.0;
  }
  const double flops = blas::gemm_flops(n, n, n);

  std::vector<TileTiming> results;
  for (const int mc : {48, 96, 192}) {
    for (const int kc : {128, 256, 384}) {
      for (const int nc : {504, 1020, 2040}) {
        blas::kernels::TileConfig cand;
        cand.mc = mc;
        cand.kc = kc;
        cand.nc = nc;
        cand.tiled_min_flops = 0;  // always exercise the tiled path
        blas::kernels::TileConfigGuard guard(cand);
        // Warm the packing arena and instruction cache once, then take
        // the best of `reps` timed runs (min filters scheduler noise).
        blas::gemm(blas::Trans::kNo, blas::Trans::kYes, n, n, n, 1.0,
                   a.data(), n, b.data(), n, 0.0, c.data(), n);
        double best_s = 1e300;
        for (int r = 0; r < std::max(reps, 1); ++r) {
          const double t0 = support::WallClock::now();
          blas::gemm(blas::Trans::kNo, blas::Trans::kYes, n, n, n, 1.0,
                     a.data(), n, b.data(), n, 0.0, c.data(), n);
          best_s = std::min(best_s, support::WallClock::now() - t0);
        }
        TileTiming t;
        t.config = cand;
        // Report the tuned config with the production dispatch threshold
        // restored; the sweep-only "force tiled" value must not leak
        // into SolverOptions.
        t.config.tiled_min_flops = blas::kernels::TileConfig{}.tiled_min_flops;
        t.gflops = flops / best_s * 1e-9;
        results.push_back(t);
      }
    }
  }
  std::sort(results.begin(), results.end(),
            [](const TileTiming& x, const TileTiming& y) {
              return x.gflops > y.gflops;
            });

  // Refinement phase: with the winning cache blocks fixed, measure the
  // triangular-driver knobs (TRSM diagonal-block width and POTRF
  // recursion crossover) on factorization-shaped calls. These are
  // near-orthogonal to MC/KC/NC — they split triangle work between the
  // substitution/unblocked kernels and the packed rank updates — so a
  // one-dimensional sweep on the best grid point suffices. The chosen
  // values are written into every returned candidate so callers that
  // pick any entry get measured triangular knobs.
  {
    const int tm = n;        // panel height of the timed right-solve
    const int tn = 64;       // supernode-ish panel width
    std::vector<double> tri(static_cast<std::size_t>(tn) * tn, 0.0);
    for (int j = 0; j < tn; ++j) {
      for (int i = j; i < tn; ++i) {
        tri[i + static_cast<std::size_t>(j) * tn] = i == j ? 4.0 : 0.25;
      }
    }
    std::vector<double> rhs(static_cast<std::size_t>(tm) * tn);
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      rhs[i] = 1.0 + static_cast<double>(i % 11) / 8.0;
    }
    std::vector<double> work(rhs.size());
    blas::kernels::TileConfig best = results.front().config;
    best.tiled_min_flops = 0;

    const auto time_min = [&](auto&& fn) {
      fn();  // warm
      double best_s = 1e300;
      for (int r = 0; r < std::max(reps, 1); ++r) {
        const double t0 = support::WallClock::now();
        fn();
        best_s = std::min(best_s, support::WallClock::now() - t0);
      }
      return best_s;
    };

    int best_nb = best.trsm_block;
    double best_nb_s = 1e300;
    for (const int nb : {6, 8, 12, 16, 24}) {
      blas::kernels::TileConfig cand = best;
      cand.trsm_block = nb;
      blas::kernels::TileConfigGuard guard(cand);
      // The restore copy is timed too, but it is identical across
      // candidates, so the argmin is unaffected.
      const double s = time_min([&] {
        work = rhs;
        blas::trsm(blas::Side::kRight, blas::UpLo::kLower, blas::Trans::kYes,
                   blas::Diag::kNonUnit, tm, tn, 1.0, tri.data(), tn,
                   work.data(), tm);
      });
      if (s < best_nb_s) {
        best_nb_s = s;
        best_nb = nb;
      }
    }

    const int pn = std::max(n / 2, 128);
    std::vector<double> spd(static_cast<std::size_t>(pn) * pn, 0.0);
    for (int j = 0; j < pn; ++j) {
      for (int i = j; i < pn; ++i) {
        spd[i + static_cast<std::size_t>(j) * pn] =
            i == j ? 2.0 * pn : 1.0 / (1.0 + i - j);
      }
    }
    std::vector<double> pwork(spd.size());
    int best_xo = best.potrf_crossover;
    double best_xo_s = 1e300;
    for (const int xo : {32, 48, 64, 96}) {
      blas::kernels::TileConfig cand = best;
      cand.trsm_block = best_nb;
      cand.potrf_crossover = xo;
      blas::kernels::TileConfigGuard guard(cand);
      const double s = time_min([&] {
        pwork = spd;
        (void)blas::potrf(blas::UpLo::kLower, pn, pwork.data(), pn);
      });
      if (s < best_xo_s) {
        best_xo_s = s;
        best_xo = xo;
      }
    }

    for (TileTiming& t : results) {
      t.config.trsm_block = best_nb;
      t.config.potrf_crossover = best_xo;
    }
  }
  return results;
}

blas::kernels::TileConfig best_tile_config(int problem) {
  return sweep_tile_configs(problem).front().config;
}

}  // namespace sympack::gpu

// Analytical offload-threshold tuning — the "hardware-agnostic analytical
// framework for determining the optimal GPU threshold sizes for each
// operation" the paper lists as future work (§6).
//
// For each operation we model the end-to-end device cost of a typical
// factorization-shaped call on a w x w buffer (kernel launch + PCIe
// staging of the non-resident operands + device flops) against the CPU
// cost, and pick the smallest buffer size where the device wins. Because
// everything derives from the MachineModel, retargeting to a different
// vendor preset (gpu/vendors.hpp) retunes the thresholds automatically.
#pragma once

#include <cstdint>
#include <vector>

#include "blas/kernels/tiling.hpp"
#include "pgas/machine_model.hpp"

namespace sympack::gpu {

struct Thresholds {
  std::int64_t potrf = 0;  // buffer elements, as in core::GpuOptions
  std::int64_t trsm = 0;
  std::int64_t syrk = 0;
  std::int64_t gemm = 0;
};

/// Compute per-operation crossover thresholds from the machine model.
Thresholds analytic_thresholds(const pgas::MachineModel& model);

// --- CPU kernel tile autotuning -----------------------------------------
// Unlike the offload thresholds above (derived from the machine model),
// the cache-block sizes of the tiled CPU engine (blas/kernels/) are tuned
// by measuring the real GEMM wall-clock on this host: cache topology is
// not part of the simulated model.

struct TileTiming {
  blas::kernels::TileConfig config;
  double gflops = 0.0;  // measured tiled-GEMM throughput
};

/// Time a candidate grid of MC/KC/NC cache-block configurations on a
/// `problem`-cubed double-precision GEMM; returns candidates sorted
/// best-first. `reps` timed repetitions per candidate.
std::vector<TileTiming> sweep_tile_configs(int problem = 384, int reps = 3);

/// The best configuration from sweep_tile_configs, ready to assign to
/// SolverOptions::kernel_tiles (or kernels::set_config).
blas::kernels::TileConfig best_tile_config(int problem = 384);

}  // namespace sympack::gpu

// Analytical offload-threshold tuning — the "hardware-agnostic analytical
// framework for determining the optimal GPU threshold sizes for each
// operation" the paper lists as future work (§6).
//
// For each operation we model the end-to-end device cost of a typical
// factorization-shaped call on a w x w buffer (kernel launch + PCIe
// staging of the non-resident operands + device flops) against the CPU
// cost, and pick the smallest buffer size where the device wins. Because
// everything derives from the MachineModel, retargeting to a different
// vendor preset (gpu/vendors.hpp) retunes the thresholds automatically.
#pragma once

#include <cstdint>

#include "pgas/machine_model.hpp"

namespace sympack::gpu {

struct Thresholds {
  std::int64_t potrf = 0;  // buffer elements, as in core::GpuOptions
  std::int64_t trsm = 0;
  std::int64_t syrk = 0;
  std::int64_t gemm = 0;
};

/// Compute per-operation crossover thresholds from the machine model.
Thresholds analytic_thresholds(const pgas::MachineModel& model);

}  // namespace sympack::gpu
